#include "cudasim/stream.hpp"

#include <atomic>
#include <stdexcept>

#include "cudasim/graph.hpp"
#include "cudasim/platform.hpp"

namespace cudasim {

namespace {
// Process-global so stream identities never collide, even across platforms.
std::atomic<std::uint64_t> next_stream_uid{1};
}  // namespace

stream::stream(platform& p, int device)
    : plat_(&p),
      device_(device < 0 ? p.current_device() : device),
      uid_(next_stream_uid.fetch_add(1, std::memory_order_relaxed)) {
  if (device_ >= p.device_count()) {
    throw std::out_of_range("cudasim: stream on nonexistent device");
  }
  std::lock_guard lock(p.mutex());
  p.register_stream(this);
}

stream::~stream() {
  if (plat_ != nullptr) {
    std::lock_guard lock(plat_->mutex());
    plat_->unregister_stream(this);
  }
}

stream::stream(stream&& other) noexcept
    : plat_(other.plat_),
      device_(other.device_),
      uid_(other.uid_),
      record_seq_(other.record_seq_),
      last_(other.last_.load(std::memory_order_relaxed)),
      capture_(other.capture_),
      status_(other.status_) {
  capture_tail_ = other.capture_tail_;
  std::lock_guard lock(plat_->mutex());
  plat_->unregister_stream(&other);
  plat_->register_stream(this);
  other.plat_ = nullptr;
  other.last_.store(nullptr, std::memory_order_relaxed);
  other.capture_ = nullptr;
}

void stream::wait_event(const event& e) {
  const event* p = &e;
  wait_events(&p, 1);
}

void stream::wait_events(const event* const* evs, std::size_t n) {
  if (capturing()) {
    throw std::logic_error(
        "cudasim: wait_event is not supported during capture; use graph "
        "dependencies instead");
  }
  std::lock_guard lock(plat_->mutex());
  // Collect still-pending nodes (completed events need no ordering) and fuse
  // them, together with the previous tail, into one join marker so future
  // work waits on everything. Very wide lists chain one join per chunk.
  op_node* tail = last_.load(std::memory_order_relaxed);
  constexpr std::size_t chunk = 16;
  op_node* pending[chunk];
  std::size_t np = 0;
  for (std::size_t i = 0; i < n; ++i) {
    op_node* evn = evs[i]->node();
    if (evn == nullptr || evn->done.load(std::memory_order_relaxed) ||
        evn == tail) {
      continue;
    }
    pending[np++] = evn;
    if (np == chunk) {
      op_node* join = plat_->tl().make_node("waitEvent", device_, nullptr, 0.0);
      timeline::add_dep(tail, join);
      for (std::size_t j = 0; j < np; ++j) {
        timeline::add_dep(pending[j], join);
      }
      tail = join;
      last_.store(join, std::memory_order_release);
      plat_->tl().submit(join);
      np = 0;
    }
  }
  if (np != 0) {
    op_node* join = plat_->tl().make_node("waitEvent", device_, nullptr, 0.0);
    timeline::add_dep(tail, join);
    for (std::size_t j = 0; j < np; ++j) {
      timeline::add_dep(pending[j], join);
    }
    last_.store(join, std::memory_order_release);
    plat_->tl().submit(join);
  }
}

void stream::synchronize() { plat_->stream_synchronize(*this); }

timepoint stream::last_op_end() const {
  op_node* tail = last_.load(std::memory_order_acquire);
  return tail == nullptr ? 0.0 : tail->t_end;
}

void stream::begin_capture(graph& g) {
  if (capturing()) {
    throw std::logic_error("cudasim: stream already capturing");
  }
  capture_ = &g;
  capture_tail_ = nullptr;
}

graph* stream::end_capture() {
  graph* g = capture_;
  capture_ = nullptr;
  capture_tail_ = nullptr;
  return g;
}

void stream::drop_completed() {
  op_node* tail = last_.load(std::memory_order_relaxed);
  if (tail != nullptr && tail->done.load(std::memory_order_relaxed)) {
    last_.store(nullptr, std::memory_order_release);
  }
}

// Event registration goes through the platform's sharded registry, which
// locks internally: the per-task event ctor/dtor on the multi-threaded
// submission path contends only on its shard, never on the platform lock.
event::event(platform& p) : plat_(&p) { p.register_event(this); }

event::~event() {
  if (plat_ != nullptr) {
    plat_->unregister_event(this);
  }
}

event::event(event&& other) noexcept
    : plat_(other.plat_),
      node_(other.node_.load(std::memory_order_relaxed)),
      recorded_(other.recorded_),
      t_end_(other.t_end_),
      stream_uid_(other.stream_uid_),
      seq_(other.seq_) {
  plat_->unregister_event(&other);
  plat_->register_event(this);
  other.plat_ = nullptr;
  other.node_.store(nullptr, std::memory_order_relaxed);
}

void event::record(stream& s) {
  if (s.capturing()) {
    throw std::logic_error("cudasim: event record during capture unsupported");
  }
  std::lock_guard lock(plat_->mutex());
  // Capture the stream's current tail directly (the event completes exactly
  // when the tail op completes) instead of enqueueing a marker node — the
  // common record-after-submit pattern then allocates nothing.
  recorded_ = true;
  stream_uid_ = s.uid();
  seq_ = s.next_record_seq();
  op_node* tail = s.last();
  if (tail == nullptr || tail->done.load(std::memory_order_relaxed)) {
    // Stream already idle: the event is complete as of "now".
    node_.store(nullptr, std::memory_order_release);
    t_end_ = tail != nullptr ? tail->t_end : plat_->tl().now();
    return;
  }
  node_.store(tail, std::memory_order_release);
}

void event::synchronize() {
  std::lock_guard lock(plat_->mutex());
  if (!recorded_) {
    throw std::logic_error("cudasim: synchronizing an unrecorded event");
  }
  op_node* n = node_.load(std::memory_order_relaxed);
  if (n != nullptr && !n->done.load(std::memory_order_relaxed)) {
    plat_->tl().drain_until(n);
  }
  drop_completed();
}

bool event::query() const {
  // Lock-free: the only simulator read allowed without the platform lock.
  // Both loads are acquire so a `true` result happens-after the completing
  // store; a stale pointer to a since-recycled node reads as `false`
  // (conservative), and nullptr means already collected (complete).
  if (!recorded_) {
    return false;
  }
  op_node* n = node_.load(std::memory_order_acquire);
  return n == nullptr || n->done.load(std::memory_order_acquire);
}

void event::drop_completed() {
  op_node* n = node_.load(std::memory_order_relaxed);
  if (n != nullptr && n->done.load(std::memory_order_relaxed)) {
    t_end_ = n->t_end;
    node_.store(nullptr, std::memory_order_release);
  }
}

}  // namespace cudasim

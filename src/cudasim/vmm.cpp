#include "cudasim/vmm.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <stdexcept>

namespace cudasim::vmm {

namespace {
std::size_t round_up_pages(std::size_t bytes) {
  return (bytes + page_size - 1) / page_size;
}
}  // namespace

reservation::reservation(platform& p, std::size_t bytes) : plat_(&p) {
  const std::size_t pages = round_up_pages(bytes == 0 ? 1 : bytes);
  bytes_ = pages * page_size;
  // Host backing stands in for the reserved VA range; Linux faults it in
  // lazily, so unpopulated reservations cost no physical memory.
  base_ = std::aligned_alloc(page_size, bytes_);
  if (base_ == nullptr) {
    throw std::bad_alloc();
  }
  owners_.assign(pages, -1);
}

reservation::~reservation() { release(); }

reservation::reservation(reservation&& other) noexcept
    : plat_(other.plat_),
      base_(other.base_),
      bytes_(other.bytes_),
      owners_(std::move(other.owners_)) {
  other.base_ = nullptr;
  other.bytes_ = 0;
  other.owners_.clear();
}

void reservation::release() {
  if (base_ == nullptr) {
    return;
  }
  // Return the physical charge to each owning device pool.
  for (int owner : owners_) {
    if (owner >= 0) {
      plat_->pool_discharge(owner, page_size);
    }
  }
  std::free(base_);
  base_ = nullptr;
  owners_.clear();
}

void reservation::map_pages(std::size_t first, std::size_t count, int device) {
  if (device < 0 || device >= plat_->device_count()) {
    throw std::out_of_range("cudasim::vmm: map_pages bad device");
  }
  if (first + count > owners_.size()) {
    throw std::out_of_range("cudasim::vmm: map_pages out of reservation");
  }
  for (std::size_t pg = first; pg < first + count; ++pg) {
    if (owners_[pg] == device) {
      continue;
    }
    if (!plat_->pool_charge(device, page_size)) {
      throw std::runtime_error("cudasim::vmm: device pool exhausted during map");
    }
    if (owners_[pg] >= 0) {
      plat_->pool_discharge(owners_[pg], page_size);
    }
    owners_[pg] = device;
  }
}

int reservation::owner_of(std::size_t offset) const {
  if (offset >= bytes_) {
    throw std::out_of_range("cudasim::vmm: owner_of outside reservation");
  }
  return owners_[offset / page_size];
}

traffic_split reservation::classify(std::size_t offset, std::size_t len,
                                    int device) const {
  traffic_split out;
  std::size_t pos = offset;
  const std::size_t end = offset + len;
  while (pos < end) {
    const std::size_t pg = pos / page_size;
    const std::size_t page_end = (pg + 1) * page_size;
    const std::size_t chunk = std::min(end, page_end) - pos;
    if (pg < owners_.size() && owners_[pg] == device) {
      out.local += static_cast<double>(chunk);
    } else {
      out.remote += static_cast<double>(chunk);
    }
    pos += chunk;
  }
  return out;
}

std::vector<std::size_t> reservation::bytes_per_device() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(plat_->device_count()), 0);
  for (int owner : owners_) {
    if (owner >= 0) {
      out[static_cast<std::size_t>(owner)] += page_size;
    }
  }
  return out;
}

}  // namespace cudasim::vmm

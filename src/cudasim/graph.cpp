#include "cudasim/graph.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "cudasim/stream.hpp"

namespace cudasim {

namespace {
constexpr double instantiate_cost_per_node = 5.0e-6;  // seconds of host time
constexpr double update_cost_per_node = 0.5e-6;       // ~10x cheaper (paper §III-B)
}  // namespace

graph_node graph::push(node n) {
  for (std::uint32_t d : n.deps) {
    if (d >= nodes_.size()) {
      throw std::out_of_range("cudasim: graph dependency on unknown node");
    }
  }
  nodes_.push_back(std::move(n));
  return graph_node{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

namespace {
std::vector<std::uint32_t> to_indices(const std::vector<graph_node>& deps) {
  std::vector<std::uint32_t> out;
  out.reserve(deps.size());
  for (graph_node d : deps) {
    if (!d.valid()) {
      throw std::invalid_argument("cudasim: invalid graph node handle");
    }
    out.push_back(d.index);
  }
  return out;
}
}  // namespace

graph_node graph::add_empty_node(const std::vector<graph_node>& deps) {
  node n;
  n.kind = graph_node_kind::empty;
  n.deps = to_indices(deps);
  return push(std::move(n));
}

graph_node graph::add_kernel_node(const std::vector<graph_node>& deps, int device,
                                  kernel_desc k, std::function<void()> body) {
  node n;
  n.kind = graph_node_kind::kernel;
  n.deps = to_indices(deps);
  n.device = device;
  n.kdesc = std::move(k);
  n.body = std::move(body);
  return push(std::move(n));
}

graph_node graph::add_memcpy_node(const std::vector<graph_node>& deps, void* dst,
                                  const void* src, std::size_t bytes,
                                  memcpy_kind kind, int device) {
  node n;
  n.kind = graph_node_kind::memcpy;
  n.deps = to_indices(deps);
  n.device = device;
  n.dst = dst;
  n.src = src;
  n.bytes = bytes;
  n.ckind = kind;
  return push(std::move(n));
}

graph_node graph::add_memcpy_peer_node(const std::vector<graph_node>& deps,
                                       void* dst, int dst_device,
                                       const void* src, int src_device,
                                       std::size_t bytes) {
  if (dst_device == src_device) {
    return add_memcpy_node(deps, dst, src, bytes,
                           memcpy_kind::device_to_device, src_device);
  }
  node n;
  n.kind = graph_node_kind::memcpy;
  n.deps = to_indices(deps);
  n.device = src_device;
  n.peer = dst_device;
  n.dst = dst;
  n.src = src;
  n.bytes = bytes;
  n.ckind = memcpy_kind::device_to_device;
  return push(std::move(n));
}

graph_node graph::add_mem_alloc_node(const std::vector<graph_node>& deps,
                                     int device, std::size_t bytes,
                                     void** out_ptr) {
  void* p = plat_->pool_reserve(device, bytes);
  *out_ptr = p;
  if (p == nullptr) {
    return graph_node{};  // pool exhausted
  }
  owned_allocs_.emplace_back(device, p);
  node n;
  n.kind = graph_node_kind::mem_alloc;
  n.deps = to_indices(deps);
  n.device = device;
  n.dst = p;
  n.bytes = bytes;
  return push(std::move(n));
}

graph_node graph::add_mem_free_node(const std::vector<graph_node>& deps,
                                    int device, void* ptr) {
  const bool owned =
      std::any_of(owned_allocs_.begin(), owned_allocs_.end(),
                  [&](const auto& a) { return a.second == ptr; });
  if (!owned) {
    throw std::logic_error(
        "cudasim: graph mem-free node must target a graph-allocated buffer");
  }
  node n;
  n.kind = graph_node_kind::mem_free;
  n.deps = to_indices(deps);
  n.device = device;
  n.dst = ptr;
  return push(std::move(n));
}

graph_node graph::add_host_node(const std::vector<graph_node>& deps,
                                std::function<void()> fn, double cost) {
  node n;
  n.kind = graph_node_kind::host;
  n.deps = to_indices(deps);
  n.body = std::move(fn);
  n.host_cost = cost;
  return push(std::move(n));
}

void graph::release_resources() {
  for (auto& [dev, ptr] : owned_allocs_) {
    plat_->pool_unreserve(dev, ptr);
  }
  owned_allocs_.clear();
}

graph_exec::graph_exec(const graph& g) : plat_(&g.owner()), nodes_(g.nodes_) {
  last_build_cost_ = instantiate_cost_per_node * static_cast<double>(nodes_.size());
}

bool graph_exec::update(const graph& g) {
  if (&g.owner() != plat_ || g.nodes_.size() != nodes_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const graph::node& a = nodes_[i];
    const graph::node& b = g.nodes_[i];
    if (a.kind != b.kind || a.device != b.device || a.peer != b.peer ||
        a.deps != b.deps) {
      return false;
    }
  }
  nodes_ = g.nodes_;  // parameter swap (kernel args, copy endpoints, bodies)
  last_build_cost_ = update_cost_per_node * static_cast<double>(nodes_.size());
  return true;
}

void graph_exec::launch(stream& s) {
  if (s.capturing()) {
    throw std::logic_error("cudasim: launching an exec graph during capture");
  }
  std::lock_guard lock(plat_->mutex());
  if (plat_->faults_armed()) {
    // One whole-graph launch counts as a single kernel-category submission
    // for the fault injector; a refused launch enqueues none of the nodes.
    const sim_status injected =
        plat_->poll_faults_locked(op_category::kernel, s.device());
    if (s.status() != sim_status::success) {
      return;
    }
    bool dead = plat_->device(s.device()).failed();
    for (const graph::node& n : nodes_) {
      dead = dead || (n.device >= 0 && plat_->device(n.device).failed()) ||
             (n.peer >= 0 && plat_->device(n.peer).failed());
    }
    if (dead) {
      s.set_status(sim_status::error_device_lost);
      return;
    }
    if (injected != sim_status::success) {
      s.set_status(injected);
      return;
    }
  } else if (s.status() != sim_status::success) {
    return;
  }
  timeline& tl = plat_->tl();
  std::vector<op_node*> created(nodes_.size(), nullptr);
  std::vector<bool> has_succ(nodes_.size(), false);

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const graph::node& n = nodes_[i];
    const int dev = n.device >= 0 ? n.device : s.device();
    op_node* op = nullptr;
    bool wired = false;  // set by multi-engine nodes that wire deps themselves
    switch (n.kind) {
      case graph_node_kind::empty:
        op = tl.make_node("graph.empty", dev, nullptr, 0.0);
        break;
      case graph_node_kind::kernel: {
        const device_desc& d = plat_->device(dev).desc();
        const double dur = d.graph_node_latency + kernel_cost_seconds(d, n.kdesc);
        op = tl.make_node(n.kdesc.name, dev, &plat_->device(dev).compute(), dur,
                          n.body);
        // A stall armed by the launch poll (or left pending from capture
        // time) lands on the first kernel node lowered.
        stall_request sr;
        if (plat_->take_pending_stall(&sr)) {
          plat_->apply_stall_locked(op, sr);
        }
        break;
      }
      case graph_node_kind::memcpy: {
        task_fn body;
        if (plat_->copy_payloads()) {
          void* dst = n.dst;
          const void* src = n.src;
          const std::size_t bytes = n.bytes;
          body = [dst, src, bytes] {
            if (dst != nullptr && src != nullptr && bytes > 0) {
              std::memmove(dst, src, bytes);
            }
          };
        }
        if (n.peer >= 0) {
          // Dual-engine peer copy: copy_out on src device and copy_in on the
          // peer run in parallel; the recorded node is their join (mirrors
          // platform::memcpy_peer_async).
          const device_desc& sd = plat_->device(dev).desc();
          const double dur = sd.copy_latency +
                             static_cast<double>(n.bytes) / sd.p2p_bw;
          op_node* out = tl.make_node("graph.memcpyPeerSrc", dev,
                                      &plat_->device(dev).copy_out(), dur,
                                      std::move(body));
          op_node* in = tl.make_node("graph.memcpyPeerDst", n.peer,
                                     &plat_->device(n.peer).copy_in(), dur);
          if (n.deps.empty()) {
            timeline::add_dep(s.last(), out);
            timeline::add_dep(s.last(), in);
          } else {
            for (std::uint32_t d : n.deps) {
              timeline::add_dep(created[d], out);
              timeline::add_dep(created[d], in);
              has_succ[d] = true;
            }
          }
          tl.submit(out);
          tl.submit(in);
          op = tl.make_node("graph.memcpyPeer", dev, nullptr, 0.0);
          op->real_work = true;
          timeline::add_dep(out, op);
          timeline::add_dep(in, op);
          wired = true;
          break;
        }
        const platform::copy_plan plan = plat_->plan_copy(dev, n.bytes, n.ckind);
        op = tl.make_node("graph.memcpy", dev, plan.eng, plan.seconds,
                          std::move(body));
        break;
      }
      case graph_node_kind::mem_alloc:
      case graph_node_kind::mem_free:
        // Buffers are owned by the template; alloc/free nodes only cost time.
        op = tl.make_node("graph.mem", dev, &plat_->device(dev).compute(),
                          plat_->device(dev).desc().alloc_latency);
        break;
      case graph_node_kind::host:
        op = tl.make_node("graph.host", -1, &plat_->host_engine(), n.host_cost,
                          n.body);
        break;
    }
    if (!wired) {
      if (n.deps.empty()) {
        timeline::add_dep(s.last(), op);
      } else {
        for (std::uint32_t d : n.deps) {
          timeline::add_dep(created[d], op);
          has_succ[d] = true;
        }
      }
    }
    created[i] = op;
    tl.submit(op);
  }

  // Join all sink nodes so stream order continues after the whole graph.
  op_node* join = tl.make_node("graph.join", s.device(), nullptr, 0.0);
  timeline::add_dep(s.last(), join);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!has_succ[i]) {
      timeline::add_dep(created[i], join);
    }
  }
  s.set_last(join);
  tl.submit(join);
  ++launches_;
}

}  // namespace cudasim

#include "cudasim/platform.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "cudasim/graph.hpp"
#include "cudasim/stream.hpp"

namespace cudasim {

device_state::device_state(int index, device_desc desc)
    : index_(index), desc_(std::move(desc)) {}

double kernel_cost_seconds(const device_desc& d, const kernel_desc& k) {
  const double compute = k.flops > 0 ? k.flops / d.fp64_flops : 0.0;
  const double mem = k.bytes > 0 ? k.bytes / d.hbm_bw : 0.0;
  const double remote = k.remote_bytes > 0 ? k.remote_bytes / d.p2p_bw : 0.0;
  const double host = k.host_bytes > 0 ? k.host_bytes / d.host_link_bw : 0.0;
  // Compute overlaps with local memory traffic (roofline); link traffic is
  // additive since it serializes behind the interconnect.
  return std::max(compute, mem) + remote + host + k.fixed_seconds;
}

platform::platform(int num_devices, const device_desc& desc) {
  if (num_devices < 1) {
    throw std::invalid_argument("cudasim: platform needs at least one device");
  }
  devices_.reserve(static_cast<std::size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    devices_.push_back(std::make_unique<device_state>(i, desc));
  }
}

platform::~platform() = default;

device_state& platform::device(int i) {
  return *devices_.at(static_cast<std::size_t>(i));
}

const device_state& platform::device(int i) const {
  return *devices_.at(static_cast<std::size_t>(i));
}

void platform::set_device(int i) {
  if (i < 0 || i >= device_count()) {
    throw std::out_of_range("cudasim: set_device out of range");
  }
  current_.store(i, std::memory_order_release);
}

int platform::current_device() const {
  return current_.load(std::memory_order_acquire);
}

void flip_payload_byte(void* p, std::size_t len, std::uint64_t seed) {
  if (p == nullptr || len == 0) {
    return;
  }
  auto* b = static_cast<unsigned char*>(p);
  b[seed % len] ^= static_cast<unsigned char>(1u << ((seed >> 8) % 8));
}

namespace {

/// Deterministic corruption victim among a device's live allocations:
/// ordered by allocation sequence so the pick never depends on hash-map
/// iteration order or pointer values.
bool pick_live_alloc(const std::unordered_map<void*, device_state::alloc_info>&
                         allocs,
                     std::uint64_t seed, void** out_p, std::size_t* out_len) {
  if (allocs.empty()) {
    return false;
  }
  std::vector<std::pair<std::uint64_t, std::pair<void*, std::size_t>>> order;
  order.reserve(allocs.size());
  for (const auto& [p, info] : allocs) {
    order.emplace_back(info.seq, std::make_pair(p, info.bytes));
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const auto& pick = order[seed % order.size()].second;
  if (pick.second == 0) {
    return false;
  }
  *out_p = pick.first;
  *out_len = pick.second;
  return true;
}

// Capture helpers: while a stream captures, submissions are appended to the
// capture graph, chained behind the stream's capture tail.
std::vector<graph_node> capture_deps(stream& s) {
  const auto tail = reinterpret_cast<std::uintptr_t>(s.capture_tail_);
  if (tail == 0) {
    return {};
  }
  return {graph_node{static_cast<std::uint32_t>(tail - 1)}};
}

void set_capture_tail(stream& s, graph_node n) {
  s.capture_tail_ =
      reinterpret_cast<void*>(static_cast<std::uintptr_t>(n.index) + 1);
}

}  // namespace

void platform::launch_kernel(stream& s, const kernel_desc& k,
                             std::function<void()> body, bool graph_launched) {
  std::lock_guard lock(mu_);
  if (faults_armed_) {
    const sim_status injected =
        poll_faults_locked(op_category::kernel, s.device());
    if (s.status() != sim_status::success) {
      return;  // sticky: refused until the caller clears the stream status
    }
    if (device(s.device()).failed()) {
      s.set_status(sim_status::error_device_lost);
      return;
    }
    if (injected != sim_status::success) {
      s.set_status(injected);
      return;
    }
    flip_request fr;
    if (take_pending_flip(&fr)) {
      // Silent output corruption: the kernel runs normally, then one bit of
      // a hinted output range (or, without hints, of a live allocation on
      // the device) flips. The one-shot guard keeps memoized graph
      // relaunches from re-flipping — two flips of the same bit cancel.
      void* tp = nullptr;
      std::size_t tlen = 0;
      if (!output_hints_.empty()) {
        const byte_span& sp = output_hints_[fr.seed % output_hints_.size()];
        tp = sp.ptr;
        tlen = sp.len;
      } else {
        pick_live_alloc(device(s.device()).live_allocs_, fr.seed, &tp, &tlen);
      }
      if (tp != nullptr && tlen > 0) {
        auto fired = std::make_shared<bool>(false);
        body = [inner = std::move(body), tp, tlen, seed = fr.seed, fired] {
          if (inner) {
            inner();
          }
          if (!*fired) {
            *fired = true;
            flip_payload_byte(tp, tlen, seed);
          }
        };
      }
    }
  } else if (s.status() != sim_status::success) {
    return;  // sticky even when set without an injector
  }
  if (s.capturing()) {
    graph* g = s.capture_graph();
    set_capture_tail(
        s, g->add_kernel_node(capture_deps(s), s.device(), k, std::move(body)));
    return;
  }
  device_state& dev = device(s.device());
  const double latency =
      graph_launched ? dev.desc().graph_node_latency : dev.desc().launch_latency;
  const double dur = latency + kernel_cost_seconds(dev.desc(), k);
  op_node* n = tl_.make_node(k.name, s.device(), &dev.compute(), dur,
                             std::move(body));
  stall_request sr;
  if (take_pending_stall(&sr)) {
    apply_stall_locked(n, sr);
  }
  try {
    timeline::add_dep(s.last(), n);
  } catch (...) {
    tl_.abandon(n);
    throw;
  }
  s.set_last(n);
  tl_.submit(n);
  maybe_drain_locked();
}

platform::copy_plan platform::plan_copy(int devidx, std::size_t n,
                                        memcpy_kind kind) {
  device_state& dev = device(devidx);
  engine* eng = nullptr;
  double bw = 0.0;
  switch (kind) {
    case memcpy_kind::host_to_device:
      eng = &dev.copy_in();
      bw = dev.desc().host_link_bw;
      break;
    case memcpy_kind::device_to_host:
      eng = &dev.copy_out();
      bw = dev.desc().host_link_bw;
      break;
    case memcpy_kind::device_to_device:
      eng = &dev.copy_out();
      bw = dev.desc().p2p_bw;
      break;
    case memcpy_kind::host_to_host:
      eng = &host_engine_;
      bw = host_memcpy_bw();
      break;
  }
  return {eng, dev.desc().copy_latency + static_cast<double>(n) / bw};
}

void platform::memcpy_async(void* dst, const void* src, std::size_t n,
                            memcpy_kind kind, stream& s) {
  std::lock_guard lock(mu_);
  flip_request flip;
  bool have_flip = false;
  if (faults_armed_) {
    const sim_status injected =
        poll_faults_locked(op_category::copy, s.device());
    if (s.status() != sim_status::success) {
      return;
    }
    // Fail-stop at submission, with an evacuation grace: copies *out* of a
    // failed device toward the host stay possible (modelling graceful
    // decommissioning), so the runtime can rescue sole modified copies.
    if (device(s.device()).failed() && kind != memcpy_kind::device_to_host) {
      s.set_status(sim_status::error_device_lost);
      return;
    }
    if (injected != sim_status::success) {
      s.set_status(injected);
      return;
    }
    have_flip = take_pending_flip(&flip) && dst != nullptr && n > 0;
  } else if (s.status() != sim_status::success) {
    return;
  }
  if (s.capturing()) {
    graph* g = s.capture_graph();
    graph_node node =
        g->add_memcpy_node(capture_deps(s), dst, src, n, kind, s.device());
    if (have_flip) {
      // In-flight corruption during capture: a host node right behind the
      // memcpy node flips one destination bit (one-shot across relaunches).
      auto fired = std::make_shared<bool>(false);
      node = g->add_host_node({node}, [dst, n, seed = flip.seed, fired] {
        if (!*fired) {
          *fired = true;
          flip_payload_byte(dst, n, seed);
        }
      });
    }
    set_capture_tail(s, node);
    return;
  }
  const copy_plan plan = plan_copy(s.device(), n, kind);
  task_fn body;
  if (copy_payloads_) {
    if (have_flip) {
      // The copy delivers, then one destination bit silently flips.
      auto fired = std::make_shared<bool>(false);
      body = [dst, src, n, seed = flip.seed, fired] {
        if (src != nullptr) {
          std::memmove(dst, src, n);
        }
        if (!*fired) {
          *fired = true;
          flip_payload_byte(dst, n, seed);
        }
      };
    } else {
      body = [dst, src, n] {
        if (dst != nullptr && src != nullptr && n > 0) {
          std::memmove(dst, src, n);
        }
      };
    }
  }
  op_node* node =
      tl_.make_node("memcpy", s.device(), plan.eng, plan.seconds, std::move(body));
  stall_request sr;
  if (take_pending_stall(&sr)) {
    apply_stall_locked(node, sr);
  }
  try {
    timeline::add_dep(s.last(), node);
  } catch (...) {
    tl_.abandon(node);
    throw;
  }
  s.set_last(node);
  tl_.submit(node);
  maybe_drain_locked();
}

void platform::memcpy_peer_async(void* dst, int dst_device, const void* src,
                                 int src_device, std::size_t n, stream& s) {
  if (dst_device == src_device) {
    memcpy_async(dst, src, n, memcpy_kind::device_to_device, s);
    return;
  }
  if (dst_device < 0 || dst_device >= device_count() || src_device < 0 ||
      src_device >= device_count()) {
    throw std::out_of_range("cudasim: memcpy_peer_async device out of range");
  }
  std::lock_guard lock(mu_);
  flip_request flip;
  bool have_flip = false;
  if (faults_armed_) {
    const sim_status injected =
        poll_faults_locked(op_category::copy, s.device());
    if (s.status() != sim_status::success) {
      return;
    }
    // No evacuation grace on peer links: rescuing data off a failed device
    // goes through the host path (device_to_host), never through a peer.
    if (device(src_device).failed() || device(dst_device).failed()) {
      s.set_status(sim_status::error_device_lost);
      return;
    }
    if (injected != sim_status::success) {
      s.set_status(injected);
      return;
    }
    have_flip = take_pending_flip(&flip) && dst != nullptr && n > 0;
  } else if (s.status() != sim_status::success) {
    return;
  }
  if (s.capturing()) {
    graph* g = s.capture_graph();
    graph_node node = g->add_memcpy_peer_node(capture_deps(s), dst, dst_device,
                                              src, src_device, n);
    if (have_flip) {
      auto fired = std::make_shared<bool>(false);
      node = g->add_host_node({node}, [dst, n, seed = flip.seed, fired] {
        if (!*fired) {
          *fired = true;
          flip_payload_byte(dst, n, seed);
        }
      });
    }
    set_capture_tail(s, node);
    return;
  }
  device_state& sdev = device(src_device);
  device_state& ddev = device(dst_device);
  const double seconds =
      sdev.desc().copy_latency + static_cast<double>(n) / sdev.desc().p2p_bw;
  task_fn body;
  if (copy_payloads_) {
    if (have_flip) {
      auto fired = std::make_shared<bool>(false);
      body = [dst, src, n, seed = flip.seed, fired] {
        if (src != nullptr) {
          std::memmove(dst, src, n);
        }
        if (!*fired) {
          *fired = true;
          flip_payload_byte(dst, n, seed);
        }
      };
    } else {
      body = [dst, src, n] {
        if (dst != nullptr && src != nullptr && n > 0) {
          std::memmove(dst, src, n);
        }
      };
    }
  }
  op_node* out = tl_.make_node("memcpyPeerSrc", src_device, &sdev.copy_out(),
                               seconds, std::move(body));
  op_node* in = tl_.make_node("memcpyPeerDst", dst_device, &ddev.copy_in(),
                              seconds);
  op_node* join = tl_.make_node("memcpyPeer", src_device, nullptr, 0.0);
  join->real_work = true;  // accepted work, not a mere marker
  stall_request sr;
  if (take_pending_stall(&sr)) {
    apply_stall_locked(out, sr);  // the source half carries the hang
  }
  try {
    timeline::add_dep(s.last(), out);
    timeline::add_dep(s.last(), in);
  } catch (...) {
    tl_.abandon(out);
    tl_.abandon(in);
    tl_.abandon(join);
    throw;
  }
  tl_.submit(out);
  tl_.submit(in);
  try {
    // Wired after submit: edges *into* a node whose predecessors are live
    // always resolve, so abandoning `join` below can never strand it.
    timeline::add_dep(out, join);
    timeline::add_dep(in, join);
  } catch (...) {
    tl_.abandon(join);
    throw;
  }
  s.set_last(join);
  tl_.submit(join);
  maybe_drain_locked();
}

void* platform::malloc_async(std::size_t bytes, stream& s) {
  std::lock_guard lock(mu_);
  if (faults_armed_) {
    const sim_status injected =
        poll_faults_locked(op_category::alloc, s.device());
    if (s.status() != sim_status::success) {
      return nullptr;
    }
    if (device(s.device()).failed()) {
      // Like genuine exhaustion this is a plain refusal, not a sticky error;
      // the caller distinguishes via platform::device_failed().
      return nullptr;
    }
    if (injected == sim_status::error_out_of_memory) {
      // cudaMallocAsync OOM is returned, not sticky. Flag it so allocators
      // can tell the injected transient from genuine exhaustion and retry.
      alloc_fault_pending_ = true;
      return nullptr;
    }
  } else if (s.status() != sim_status::success) {
    return nullptr;
  }
  if (s.capturing()) {
    void* out = nullptr;
    graph* g = s.capture_graph();
    graph_node n = g->add_mem_alloc_node(capture_deps(s), s.device(), bytes, &out);
    if (n.valid()) {
      set_capture_tail(s, n);
    }
    return out;
  }
  device_state& dev = device(s.device());
  if (dev.pool_used_ + bytes > dev.pool_capacity()) {
    return nullptr;  // pool exhausted; caller reacts (eviction, etc.)
  }
  void* p = std::malloc(bytes == 0 ? 1 : bytes);
  if (p == nullptr) {
    return nullptr;
  }
  dev.pool_used_ += bytes;
  dev.live_allocs_.emplace(p,
                           device_state::alloc_info{bytes, dev.alloc_seq_++});
  // The allocation itself is stream-ordered: later ops on the stream wait
  // for it, modelling cudaMallocAsync.
  op_node* node = tl_.make_node("mallocAsync", s.device(), &dev.compute(),
                                dev.desc().alloc_latency);
  timeline::add_dep(s.last(), node);
  s.set_last(node);
  tl_.submit(node);
  maybe_drain_locked();
  return p;
}

void platform::free_async(void* p, stream& s) {
  if (p == nullptr) {
    return;
  }
  if (s.capturing()) {
    graph* g = s.capture_graph();
    set_capture_tail(s, g->add_mem_free_node(capture_deps(s), s.device(), p));
    return;
  }
  std::lock_guard lock(mu_);
  device_state& dev = device(s.device());
  auto it = dev.live_allocs_.find(p);
  if (it == dev.live_allocs_.end()) {
    throw std::logic_error("cudasim: free_async of unknown pointer");
  }
  const std::size_t bytes = it->second.bytes;
  dev.live_allocs_.erase(it);
  // Pool space is returned in submission order (the pool can reuse the range
  // for future stream-ordered allocations); the host backing is released when
  // the free node completes.
  dev.pool_used_ -= bytes;
  op_node* node = tl_.make_node("freeAsync", s.device(), &dev.compute(),
                                dev.desc().alloc_latency, [p] { std::free(p); });
  timeline::add_dep(s.last(), node);
  s.set_last(node);
  tl_.submit(node);
  maybe_drain_locked();
}

void* platform::pool_reserve(int devidx, std::size_t bytes) {
  std::lock_guard lock(mu_);
  device_state& dev = device(devidx);
  if (dev.pool_used_ + bytes > dev.pool_capacity()) {
    return nullptr;
  }
  void* p = std::malloc(bytes == 0 ? 1 : bytes);
  if (p == nullptr) {
    return nullptr;
  }
  dev.pool_used_ += bytes;
  dev.live_allocs_.emplace(p,
                           device_state::alloc_info{bytes, dev.alloc_seq_++});
  return p;
}

void platform::pool_unreserve(int devidx, void* p) {
  if (p == nullptr) {
    return;
  }
  std::lock_guard lock(mu_);
  device_state& dev = device(devidx);
  auto it = dev.live_allocs_.find(p);
  if (it == dev.live_allocs_.end()) {
    throw std::logic_error("cudasim: pool_unreserve of unknown pointer");
  }
  dev.pool_used_ -= it->second.bytes;
  dev.live_allocs_.erase(it);
  std::free(p);
}

bool platform::pool_charge(int devidx, std::size_t bytes) {
  std::lock_guard lock(mu_);
  device_state& dev = device(devidx);
  if (dev.pool_used_ + bytes > dev.pool_capacity()) {
    return false;
  }
  dev.pool_used_ += bytes;
  return true;
}

void platform::pool_discharge(int devidx, std::size_t bytes) {
  std::lock_guard lock(mu_);
  device_state& dev = device(devidx);
  if (dev.pool_used_ < bytes) {
    throw std::logic_error("cudasim: pool_discharge underflow");
  }
  dev.pool_used_ -= bytes;
}

void platform::launch_host_func(stream& s, std::function<void()> fn,
                                double cost) {
  if (s.capturing()) {
    graph* g = s.capture_graph();
    set_capture_tail(s, g->add_host_node(capture_deps(s), std::move(fn), cost));
    return;
  }
  std::lock_guard lock(mu_);
  op_node* node = tl_.make_node("hostFunc", -1, &host_engine_, cost, std::move(fn));
  timeline::add_dep(s.last(), node);
  s.set_last(node);
  tl_.submit(node);
  maybe_drain_locked();
}


void platform::set_fault_injector(std::shared_ptr<fault_injector> fi) {
  std::lock_guard lock(mu_);
  injector_ = std::move(fi);
  has_injector_.store(injector_ != nullptr, std::memory_order_release);
  faults_armed_.store(injector_ != nullptr || any_device_failed_,
                      std::memory_order_release);
}

fault_injector& platform::ensure_fault_injector() {
  std::lock_guard lock(mu_);
  if (!injector_) {
    injector_ = std::make_shared<fault_injector>();
  }
  has_injector_.store(true, std::memory_order_release);
  faults_armed_.store(true, std::memory_order_release);
  return *injector_;
}

sim_status platform::poll_faults_locked(op_category cat, int device) {
  if (!injector_) {
    return sim_status::success;
  }
  pending_flip_ = {};  // a flip armed on a refused earlier op is dropped
  const sim_status st = injector_->on_op(cat, device, tl_.now(), *this);
  flip_request fr;
  if (injector_->take_flip(&fr)) {
    if (!copy_payloads_) {
      // Timing-only runs carry no meaningful payload bytes to corrupt.
    } else if (fr.site == flip_site::resident) {
      apply_resident_flip_locked(fr);
    } else {
      pending_flip_ = fr;
    }
  }
  // Stalls stay pending until an engine op absorbs them (sticky across
  // polls, unlike flips): a stall armed during stream capture has no DES
  // node to land on and rides forward to the eventual graph launch.
  stall_request sr;
  if (injector_->take_stall(&sr)) {
    pending_stall_ = sr;
    stall_pending_ = true;
  }
  return st;
}

bool platform::take_pending_stall(stall_request* out) {
  if (!stall_pending_) {
    return false;
  }
  *out = pending_stall_;
  pending_stall_ = {};
  stall_pending_ = false;
  return true;
}

void platform::apply_stall_locked(op_node* n, const stall_request& sr) {
  if (n == nullptr) {
    return;
  }
  if (sr.permanent) {
    n->stall_permanent = true;
  } else {
    n->stalled = true;
    n->duration += sr.seconds;
  }
  stalled_ops_.push_back(n);
}

platform::stall_info platform::cancel_stalled_op(const op_node* prefer) {
  std::lock_guard lock(mu_);
  std::erase_if(stalled_ops_, [](op_node* n) {
    return n->done.load(std::memory_order_relaxed);
  });
  stall_info info;
  const auto try_cancel = [&](op_node* n) {
    if (!tl_.cancel(n)) {
      return false;  // e.g. still waiting on predecessors
    }
    info.found = true;
    info.id = n->id;
    info.name = n->name;
    info.device = n->device;
    info.node = n;
    return true;
  };
  if (prefer != nullptr) {
    for (op_node* n : stalled_ops_) {
      if (n == prefer && try_cancel(n)) {
        return info;
      }
    }
  }
  for (op_node* n : stalled_ops_) {
    if (try_cancel(n)) {
      return info;
    }
  }
  return info;
}

std::size_t platform::drain_window(timepoint t_limit) {
  std::lock_guard lock(mu_);
  return tl_.drain_until_time(t_limit);
}

bool platform::drain_one() {
  std::lock_guard lock(mu_);
  return tl_.drain_one();
}

void platform::advance_clock(timepoint t) {
  std::lock_guard lock(mu_);
  tl_.advance_now(t);
}

std::uint64_t platform::live_ops() const {
  std::lock_guard lock(mu_);
  return tl_.live_count();
}

std::string platform::stuck_report() const {
  std::lock_guard lock(mu_);
  return tl_.stuck_report();
}

void platform::apply_resident_flip_locked(const flip_request& fr) {
  if (fr.device < 0 || fr.device >= device_count()) {
    return;
  }
  device_state& dev = device(fr.device);
  void* p = nullptr;
  std::size_t len = 0;
  // Applied immediately: at-rest aging needs no stream ordering, and a
  // pointer still present in live_allocs_ has not had free_async submitted,
  // so its backing is alive. Deferring to a DES node would race the
  // deferred std::free bodies.
  if (pick_live_alloc(dev.live_allocs_, fr.seed, &p, &len)) {
    flip_payload_byte(p, len, fr.seed);
  }
}

bool platform::take_pending_flip(flip_request* out) {
  if (pending_flip_.site == flip_site::none) {
    return false;
  }
  *out = pending_flip_;
  pending_flip_ = {};
  return true;
}

void platform::set_output_hints(std::vector<byte_span> spans) {
  std::lock_guard lock(mu_);
  output_hints_ = std::move(spans);
}

void platform::clear_output_hints() {
  std::lock_guard lock(mu_);
  output_hints_.clear();
}

void platform::fail_device(int dev) {
  std::lock_guard lock(mu_);
  device(dev).failed_ = true;
  any_device_failed_ = true;
  faults_armed_.store(true, std::memory_order_release);
}

bool platform::device_failed(int dev) const {
  std::lock_guard lock(mu_);
  return device(dev).failed_;
}

bool platform::consume_injected_alloc_failure() {
  std::lock_guard lock(mu_);
  const bool was = alloc_fault_pending_;
  alloc_fault_pending_ = false;
  return was;
}

void platform::stream_delay(stream& s, double seconds) {
  if (seconds <= 0.0) {
    return;
  }
  if (s.capturing()) {
    // No-op during capture: a backoff node would change the captured graph
    // topology (breaking exec-graph memoization) and confuse the backends'
    // partial-submission detection, which compares capture tails.
    return;
  }
  std::lock_guard lock(mu_);
  op_node* node = tl_.make_node("retryBackoff", s.device(), nullptr, seconds);
  timeline::add_dep(s.last(), node);
  s.set_last(node);
  tl_.submit(node);
}

void platform::maybe_drain_locked() {
  if (tl_.live_count() > 100000) {
    tl_.drain();
    collect_handles();
    tl_.gc();
  }
}

void platform::stream_synchronize(stream& s) {
  std::lock_guard lock(mu_);
  op_node* last = s.last();
  if (last == nullptr) {
    return;
  }
  if (!last->done.load(std::memory_order_relaxed)) {
    tl_.drain_until(last);
  }
  collect_handles();
  tl_.gc();
}

void platform::synchronize() {
  std::lock_guard lock(mu_);
  tl_.drain();
  collect_handles();
  tl_.gc();
}

void platform::register_event(event* e) {
  event_shard& sh = shard_of(e);
  std::lock_guard lock(sh.mu);
  sh.events.insert(e);
}

void platform::unregister_event(event* e) {
  event_shard& sh = shard_of(e);
  std::lock_guard lock(sh.mu);
  sh.events.erase(e);
}

void platform::collect_handles() {
  // Called with mu_ held. Shard locks nest inside the driver lock; event
  // registration takes only its shard lock, so the order never inverts.
  for (stream* s : streams_) {
    s->drop_completed();
  }
  for (event_shard& sh : event_shards_) {
    std::lock_guard lock(sh.mu);
    for (event* e : sh.events) {
      e->drop_completed();
    }
  }
  // Stalled-op tracking must drop done nodes before gc() can recycle them:
  // a recycled node's pointer would alias an unrelated live op and
  // cancel_stalled_op() could cancel an innocent victim.
  std::erase_if(stalled_ops_, [](op_node* n) {
    return n->done.load(std::memory_order_relaxed);
  });
  // Everything retired up to this point has had its handles dropped and is
  // now safe for timeline::gc() to recycle.
  tl_.mark_collected();
}

namespace {
std::shared_ptr<platform>& default_slot() {
  static std::shared_ptr<platform> p;
  return p;
}
}  // namespace

platform& default_platform() {
  auto& slot = default_slot();
  if (!slot) {
    slot = std::make_shared<platform>(1, a100_desc());
  }
  return *slot;
}

std::shared_ptr<platform> set_default_platform(std::shared_ptr<platform> p) {
  auto& slot = default_slot();
  std::shared_ptr<platform> prev = slot;
  slot = std::move(p);
  return prev;
}

scoped_platform::scoped_platform(int num_devices, const device_desc& desc)
    : mine_(std::make_shared<platform>(num_devices, desc)) {
  previous_ = set_default_platform(mine_);
}

scoped_platform::~scoped_platform() {
  try {
    mine_->synchronize();
  } catch (...) {
    // A throwing kernel body can leave the timeline unfinishable; the
    // platform is being torn down anyway, so absorb the failure rather
    // than terminating during unwinding.
  }
  set_default_platform(previous_);
}

}  // namespace cudasim

// Tiled Cholesky decomposition over CUDASTF (§VII-C): one logical data per
// tile, cuBLAS/cuSOLVER-style kernels inside tasks, all coordination,
// memory management and synchronization left to the library. Look-ahead
// emerges automatically from the inferred dependency DAG.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cudastf/cudastf.hpp"

namespace blaslib {

/// Tile-major storage of the lower triangle of an SPD matrix: tile (i, j),
/// i >= j, is a contiguous block-size x block-size buffer. This is the
/// host-side original location the runtime writes back to.
class tile_matrix {
 public:
  /// `zero_init` zeroes the tile buffers (required when the numerical
  /// bodies run). Timing-only runs at paper scale pass false so tens of GB
  /// of backing stay unfaulted virtual memory.
  tile_matrix(std::size_t n, std::size_t block, bool zero_init = true);

  std::size_t n() const { return n_; }
  std::size_t block() const { return block_; }
  std::size_t tiles() const { return tiles_; }
  /// Extent (rows == cols) of tile (i, j) — edge tiles may be smaller.
  std::size_t tile_extent(std::size_t i) const;
  double* tile_ptr(std::size_t i, std::size_t j);

  /// Imports the lower triangle of a dense row-major n x n matrix.
  void import_dense(const double* a);
  /// Exports the lower triangle back (upper left untouched).
  void export_dense(double* a) const;

 private:
  std::size_t index(std::size_t i, std::size_t j) const;
  std::size_t n_;
  std::size_t block_;
  std::size_t tiles_;
  std::vector<std::unique_ptr<double[]>> store_;
};

struct cholesky_options {
  /// Tile size; the paper uses 1960 on A100 and 3072 on H100.
  std::size_t block = 1960;
  /// Run the numerical bodies (small problems / tests) or timing only.
  bool compute = true;
  /// Devices to spread tiles over (round-robin by tile row). Empty = all.
  std::vector<int> devices;
};

/// Factors the tiles in place (lower Cholesky) by submitting the classic
/// right-looking tiled algorithm through `ctx`. Returns the number of tasks
/// submitted. Does not synchronize; call ctx.finalize() (or fence per epoch)
/// to retrieve results.
std::size_t tiled_cholesky_stf(cudastf::context& ctx, tile_matrix& a,
                               const cholesky_options& opts = {});

/// FLOP count of a full Cholesky factorization (n^3/3), for GFLOP/s plots.
double cholesky_flops(std::size_t n);

}  // namespace blaslib

// "cuBLAS/cuSOLVER"-shaped wrappers: each call enqueues one simulated
// device kernel on a stream, with FLOP-exact cost descriptors calibrated to
// the library efficiencies observed on A100-class hardware, and (optionally)
// the host reference numerics as the kernel body.
//
// These are the kernels the paper's tiled Cholesky calls inside tasks
// (§VII-C), "leaving all coordination, memory management, and
// synchronization to the library".
#pragma once

#include "blaslib/blas_host.hpp"
#include "cudasim/platform.hpp"
#include "cudasim/stream.hpp"

namespace blaslib {

/// Relative efficiency of each kernel versus the device's sustained GEMM
/// rate (device_desc::fp64_flops). GEMM defines the scale; the triangular
/// kernels run below it, and the small panel factorization is latency- and
/// bandwidth-limited.
struct kernel_efficiency {
  double gemm = 1.00;
  double syrk = 0.95;
  double trsm = 0.80;
  double potrf = 0.25;
};

/// FLOP counts for the tile kernels (standard dense counts).
double gemm_flops(std::size_t m, std::size_t n, std::size_t k);
double syrk_flops(std::size_t n, std::size_t k);
double trsm_flops(std::size_t m, std::size_t n);
double potrf_flops(std::size_t n);

/// C = alpha*op(A)*op(B) + beta*C as one simulated kernel on `s`.
/// When `compute` is false the numerical body is skipped (timing-only).
void dgemm(cudasim::platform& p, cudasim::stream& s, bool trans_a, bool trans_b,
           double alpha, slice<const double, 2> a, slice<const double, 2> b,
           double beta, slice<double, 2> c, bool compute = true);

void dsyrk(cudasim::platform& p, cudasim::stream& s, double alpha,
           slice<const double, 2> a, double beta, slice<double, 2> c,
           bool compute = true);

void dtrsm(cudasim::platform& p, cudasim::stream& s, slice<const double, 2> l,
           slice<double, 2> b, bool compute = true);

void dpotrf(cudasim::platform& p, cudasim::stream& s, slice<double, 2> a,
            bool compute = true);

/// CUB-like single-device reduction: out[0] = sum(in). Reads the whole
/// input at (nearly) full device bandwidth — the hand-tuned baseline of
/// Table II.
void device_reduce_sum(cudasim::platform& p, cudasim::stream& s,
                       slice<const double> in, double* out,
                       bool compute = true);

}  // namespace blaslib

// Host reference implementations of the dense kernels the Cholesky study
// needs (the numerical stand-in for cuBLAS/cuSOLVER device kernels —
// DESIGN.md §1). Row-major, double precision, lower-triangular convention.
#pragma once

#include <cstddef>

#include "cudastf/slice.hpp"

namespace blaslib {

using cudastf::slice;

/// C = alpha * op(A) * op(B) + beta * C, row-major.
/// op is transpose when the corresponding flag is set.
void gemm_host(bool trans_a, bool trans_b, double alpha,
               slice<const double, 2> a, slice<const double, 2> b, double beta,
               slice<double, 2> c);

/// C = alpha * A * A^T + beta * C, updating the lower triangle only.
void syrk_host(double alpha, slice<const double, 2> a, double beta,
               slice<double, 2> c);

/// Solves X * L^T = B in place (right, lower, transposed): the TRSM variant
/// used by the tiled Cholesky panel update. L is unit-free lower triangular.
void trsm_host(slice<const double, 2> l, slice<double, 2> b);

/// In-place lower Cholesky factorization of the n x n tile. Returns false
/// if the tile is not positive definite.
bool potrf_host(slice<double, 2> a);

/// Reference full-matrix Cholesky (lower) for validation.
bool cholesky_reference(double* a, std::size_t n);

/// Fills a symmetric positive-definite matrix (diagonally dominant).
void fill_spd(double* a, std::size_t n, unsigned seed);

}  // namespace blaslib

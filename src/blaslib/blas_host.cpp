#include "blaslib/blas_host.hpp"

#include <cmath>
#include <random>

namespace blaslib {

void gemm_host(bool trans_a, bool trans_b, double alpha,
               slice<const double, 2> a, slice<const double, 2> b, double beta,
               slice<double, 2> c) {
  const std::size_t m = c.extent(0);
  const std::size_t n = c.extent(1);
  const std::size_t k = trans_a ? a.extent(0) : a.extent(1);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double av = trans_a ? a(p, i) : a(i, p);
        const double bv = trans_b ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
}

void syrk_host(double alpha, slice<const double, 2> a, double beta,
               slice<double, 2> c) {
  const std::size_t n = c.extent(0);
  const std::size_t k = a.extent(1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += a(i, p) * a(j, p);
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
}

void trsm_host(slice<const double, 2> l, slice<double, 2> b) {
  // Solve X * L^T = B row by row: x_ij = (b_ij - sum_{p<j} x_ip * l_jp) / l_jj.
  const std::size_t m = b.extent(0);
  const std::size_t n = b.extent(1);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = b(i, j);
      for (std::size_t p = 0; p < j; ++p) {
        acc -= b(i, p) * l(j, p);
      }
      b(i, j) = acc / l(j, j);
    }
  }
}

bool potrf_host(slice<double, 2> a) {
  const std::size_t n = a.extent(0);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t p = 0; p < j; ++p) {
      d -= a(j, p) * a(j, p);
    }
    if (d <= 0.0) {
      return false;
    }
    d = std::sqrt(d);
    a(j, j) = d;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t p = 0; p < j; ++p) {
        acc -= a(i, p) * a(j, p);
      }
      a(i, j) = acc / d;
    }
    // Zero the strictly-upper part for clean comparisons.
    for (std::size_t i = 0; i < j; ++i) {
      a(i, j) = 0.0;
    }
  }
  return true;
}

bool cholesky_reference(double* a, std::size_t n) {
  return potrf_host(slice<double, 2>(a, n, n));
}

void fill_spd(double* a, std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = dist(rng);
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] += static_cast<double>(n);  // diagonal dominance -> SPD
  }
}

}  // namespace blaslib

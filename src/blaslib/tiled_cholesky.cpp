#include "blaslib/tiled_cholesky.hpp"

#include <stdexcept>

#include "blaslib/blas_sim.hpp"

namespace blaslib {

tile_matrix::tile_matrix(std::size_t n, std::size_t block, bool zero_init)
    : n_(n), block_(block), tiles_((n + block - 1) / block) {
  if (block == 0 || n == 0) {
    throw std::invalid_argument("blaslib: empty tile matrix");
  }
  store_.resize(tiles_ * (tiles_ + 1) / 2);
  for (std::size_t i = 0; i < tiles_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      // All tiles are full block-size buffers. Edge tiles are padded: the
      // padded diagonal carries an identity block so the factorization of a
      // padded tile equals the factorization of the useful region — kernels
      // always run at full block extents. Timing-only runs skip the zeroing
      // so the backing stays unfaulted virtual memory.
      store_[index(i, j)] =
          zero_init ? std::make_unique<double[]>(block_ * block_)
                    : std::make_unique_for_overwrite<double[]>(block_ * block_);
    }
  }
  if (zero_init) {
    const std::size_t last = tiles_ - 1;
    double* t = store_[index(last, last)].get();
    for (std::size_t r = tile_extent(last); r < block_; ++r) {
      t[r * block_ + r] = 1.0;
    }
  }
}

std::size_t tile_matrix::index(std::size_t i, std::size_t j) const {
  if (j > i || i >= tiles_) {
    throw std::out_of_range("blaslib: tile index outside lower triangle");
  }
  return i * (i + 1) / 2 + j;
}

std::size_t tile_matrix::tile_extent(std::size_t i) const {
  const std::size_t start = i * block_;
  return std::min(block_, n_ - start);
}

double* tile_matrix::tile_ptr(std::size_t i, std::size_t j) {
  return store_[index(i, j)].get();
}

void tile_matrix::import_dense(const double* a) {
  for (std::size_t ti = 0; ti < tiles_; ++ti) {
    for (std::size_t tj = 0; tj <= ti; ++tj) {
      double* t = store_[index(ti, tj)].get();
      const std::size_t rows = tile_extent(ti);
      const std::size_t cols = tile_extent(tj);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          t[r * block_ + c] = a[(ti * block_ + r) * n_ + tj * block_ + c];
        }
      }
    }
  }
}

void tile_matrix::export_dense(double* a) const {
  for (std::size_t ti = 0; ti < tiles_; ++ti) {
    for (std::size_t tj = 0; tj <= ti; ++tj) {
      const double* t = store_[ti * (ti + 1) / 2 + tj].get();
      const std::size_t rows = tile_extent(ti);
      const std::size_t cols = tile_extent(tj);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          a[(ti * block_ + r) * n_ + tj * block_ + c] = t[r * block_ + c];
        }
      }
    }
  }
}

double cholesky_flops(std::size_t n) {
  const double dn = static_cast<double>(n);
  return dn * dn * dn / 3.0;
}

std::size_t tiled_cholesky_stf(cudastf::context& ctx, tile_matrix& a,
                               const cholesky_options& opts) {
  using namespace cudastf;
  cudasim::platform& plat = ctx.platform();
  std::vector<int> devs = opts.devices;
  if (devs.empty()) {
    for (int d = 0; d < plat.device_count(); ++d) {
      devs.push_back(d);
    }
  }
  const std::size_t T = a.tiles();
  const std::size_t bs = a.block();
  const bool compute = opts.compute;

  // One logical data per (lower-triangle) tile; the runtime tracks
  // coherency, allocation and transfers per tile.
  std::vector<logical_data<slice<double, 2>>> tiles(T * T);
  auto lt = [&](std::size_t i, std::size_t j) -> logical_data<slice<double, 2>>& {
    return tiles[i * T + j];
  };
  for (std::size_t i = 0; i < T; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      lt(i, j) = ctx.logical_data(a.tile_ptr(i, j), bs, bs, "tile");
    }
  }
  // Tile-row round robin over devices: the trailing update spreads across
  // the machine while the next panel factors (automatic look-ahead).
  auto owner = [&](std::size_t i) { return devs[i % devs.size()]; };

  std::size_t tasks = 0;
  for (std::size_t k = 0; k < T; ++k) {
    ctx.task(exec_place::device(owner(k)), lt(k, k).rw()).set_symbol("potrf")
            ->*[&plat, compute](cudasim::stream& s, slice<double, 2> akk) {
      dpotrf(plat, s, akk, compute);
    };
    ++tasks;
    for (std::size_t i = k + 1; i < T; ++i) {
      ctx.task(exec_place::device(owner(i)), lt(k, k).read(), lt(i, k).rw())
              .set_symbol("trsm")
              ->*[&plat, compute](cudasim::stream& s,
                                  slice<const double, 2> akk,
                                  slice<double, 2> aik) {
        dtrsm(plat, s, akk, aik, compute);
      };
      ++tasks;
    }
    for (std::size_t i = k + 1; i < T; ++i) {
      ctx.task(exec_place::device(owner(i)), lt(i, k).read(), lt(i, i).rw())
              .set_symbol("syrk")
              ->*[&plat, compute](cudasim::stream& s,
                                  slice<const double, 2> aik,
                                  slice<double, 2> aii) {
        dsyrk(plat, s, -1.0, aik, 1.0, aii, compute);
      };
      ++tasks;
      for (std::size_t j = k + 1; j < i; ++j) {
        ctx.task(exec_place::device(owner(i)), lt(i, k).read(), lt(j, k).read(),
                 lt(i, j).rw())
                .set_symbol("gemm")
                ->*[&plat, compute](cudasim::stream& s,
                                    slice<const double, 2> aik,
                                    slice<const double, 2> ajk,
                                    slice<double, 2> aij) {
          dgemm(plat, s, false, true, -1.0, aik, ajk, 1.0, aij, compute);
        };
        ++tasks;
      }
    }
  }
  return tasks;
}

}  // namespace blaslib

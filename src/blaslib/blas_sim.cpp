#include "blaslib/blas_sim.hpp"

namespace blaslib {

namespace {
const kernel_efficiency eff{};

double bytes_of(std::size_t elems) { return 8.0 * static_cast<double>(elems); }
}  // namespace

double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}
double syrk_flops(std::size_t n, std::size_t k) {
  return static_cast<double>(n) * static_cast<double>(n + 1) *
         static_cast<double>(k);
}
double trsm_flops(std::size_t m, std::size_t n) {
  return static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(n);
}
double potrf_flops(std::size_t n) {
  return static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(n) / 3.0;
}

void dgemm(cudasim::platform& p, cudasim::stream& s, bool trans_a, bool trans_b,
           double alpha, slice<const double, 2> a, slice<const double, 2> b,
           double beta, slice<double, 2> c, bool compute) {
  const std::size_t m = c.extent(0);
  const std::size_t n = c.extent(1);
  const std::size_t k = trans_a ? a.extent(0) : a.extent(1);
  cudasim::kernel_desc desc;
  desc.name = "dgemm";
  desc.flops = gemm_flops(m, n, k) / eff.gemm;
  desc.bytes = bytes_of(a.size() + b.size() + 2 * c.size());
  std::function<void()> body;
  if (compute) {
    body = [=] { gemm_host(trans_a, trans_b, alpha, a, b, beta, c); };
  }
  p.launch_kernel(s, desc, std::move(body));
}

void dsyrk(cudasim::platform& p, cudasim::stream& s, double alpha,
           slice<const double, 2> a, double beta, slice<double, 2> c,
           bool compute) {
  cudasim::kernel_desc desc;
  desc.name = "dsyrk";
  desc.flops = syrk_flops(c.extent(0), a.extent(1)) / eff.syrk;
  desc.bytes = bytes_of(a.size() + 2 * c.size());
  std::function<void()> body;
  if (compute) {
    body = [=] { syrk_host(alpha, a, beta, c); };
  }
  p.launch_kernel(s, desc, std::move(body));
}

void dtrsm(cudasim::platform& p, cudasim::stream& s, slice<const double, 2> l,
           slice<double, 2> b, bool compute) {
  cudasim::kernel_desc desc;
  desc.name = "dtrsm";
  desc.flops = trsm_flops(b.extent(0), b.extent(1)) / eff.trsm;
  desc.bytes = bytes_of(l.size() + 2 * b.size());
  std::function<void()> body;
  if (compute) {
    body = [=] { trsm_host(l, b); };
  }
  p.launch_kernel(s, desc, std::move(body));
}

void dpotrf(cudasim::platform& p, cudasim::stream& s, slice<double, 2> a,
            bool compute) {
  cudasim::kernel_desc desc;
  desc.name = "dpotrf";
  desc.flops = potrf_flops(a.extent(0)) / eff.potrf;
  desc.bytes = bytes_of(2 * a.size());
  std::function<void()> body;
  if (compute) {
    body = [=] {
      if (!potrf_host(a)) {
        throw std::runtime_error("blaslib: tile not positive definite");
      }
    };
  }
  p.launch_kernel(s, desc, std::move(body));
}

void device_reduce_sum(cudasim::platform& p, cudasim::stream& s,
                       slice<const double> in, double* out, bool compute) {
  cudasim::kernel_desc desc;
  desc.name = "cub.DeviceReduce";
  // Hand-tuned reduction: ~99.8% of peak HBM bandwidth (1796 GB/s on the
  // 1.8 TB/s A100 model).
  desc.bytes = bytes_of(in.size()) / 0.998;
  std::function<void()> body;
  if (compute) {
    body = [=] {
      double acc = 0.0;
      for (std::size_t i = 0; i < in.size(); ++i) {
        acc += in(i);
      }
      *out = acc;
    };
  }
  p.launch_kernel(s, desc, std::move(body));
}

}  // namespace blaslib

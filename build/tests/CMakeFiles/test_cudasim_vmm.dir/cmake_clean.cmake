file(REMOVE_RECURSE
  "CMakeFiles/test_cudasim_vmm.dir/cudasim/test_vmm.cpp.o"
  "CMakeFiles/test_cudasim_vmm.dir/cudasim/test_vmm.cpp.o.d"
  "test_cudasim_vmm"
  "test_cudasim_vmm.pdb"
  "test_cudasim_vmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cudasim_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_cudasim_graph.dir/cudasim/test_graph.cpp.o"
  "CMakeFiles/test_cudasim_graph.dir/cudasim/test_graph.cpp.o.d"
  "test_cudasim_graph"
  "test_cudasim_graph.pdb"
  "test_cudasim_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cudasim_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_cudasim_graph.
# This may be replaced when dependencies are built.

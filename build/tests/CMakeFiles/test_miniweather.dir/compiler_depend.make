# Empty compiler generated dependencies file for test_miniweather.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_miniweather.dir/miniweather/test_miniweather.cpp.o"
  "CMakeFiles/test_miniweather.dir/miniweather/test_miniweather.cpp.o.d"
  "test_miniweather"
  "test_miniweather.pdb"
  "test_miniweather[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miniweather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

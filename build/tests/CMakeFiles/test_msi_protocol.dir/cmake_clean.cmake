file(REMOVE_RECURSE
  "CMakeFiles/test_msi_protocol.dir/cudastf/test_msi_protocol.cpp.o"
  "CMakeFiles/test_msi_protocol.dir/cudastf/test_msi_protocol.cpp.o.d"
  "test_msi_protocol"
  "test_msi_protocol.pdb"
  "test_msi_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msi_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_msi_protocol.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_graph_ctx.
# This may be replaced when dependencies are built.

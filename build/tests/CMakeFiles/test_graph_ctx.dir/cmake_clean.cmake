file(REMOVE_RECURSE
  "CMakeFiles/test_graph_ctx.dir/cudastf/test_graph_ctx.cpp.o"
  "CMakeFiles/test_graph_ctx.dir/cudastf/test_graph_ctx.cpp.o.d"
  "test_graph_ctx"
  "test_graph_ctx.pdb"
  "test_graph_ctx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_ctx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

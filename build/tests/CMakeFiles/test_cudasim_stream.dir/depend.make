# Empty dependencies file for test_cudasim_stream.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_cudasim_stream.dir/cudasim/test_stream.cpp.o"
  "CMakeFiles/test_cudasim_stream.dir/cudasim/test_stream.cpp.o.d"
  "test_cudasim_stream"
  "test_cudasim_stream.pdb"
  "test_cudasim_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cudasim_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_page_mapper.dir/cudastf/test_page_mapper.cpp.o"
  "CMakeFiles/test_page_mapper.dir/cudastf/test_page_mapper.cpp.o.d"
  "test_page_mapper"
  "test_page_mapper.pdb"
  "test_page_mapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

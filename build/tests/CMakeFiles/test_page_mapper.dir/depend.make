# Empty dependencies file for test_page_mapper.
# This may be replaced when dependencies are built.

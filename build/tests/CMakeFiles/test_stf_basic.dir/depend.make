# Empty dependencies file for test_stf_basic.
# This may be replaced when dependencies are built.

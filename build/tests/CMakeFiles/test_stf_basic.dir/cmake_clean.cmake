file(REMOVE_RECURSE
  "CMakeFiles/test_stf_basic.dir/cudastf/test_stf_basic.cpp.o"
  "CMakeFiles/test_stf_basic.dir/cudastf/test_stf_basic.cpp.o.d"
  "test_stf_basic"
  "test_stf_basic.pdb"
  "test_stf_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stf_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

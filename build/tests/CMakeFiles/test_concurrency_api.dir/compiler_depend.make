# Empty compiler generated dependencies file for test_concurrency_api.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency_api.dir/cudastf/test_concurrency_api.cpp.o"
  "CMakeFiles/test_concurrency_api.dir/cudastf/test_concurrency_api.cpp.o.d"
  "test_concurrency_api"
  "test_concurrency_api.pdb"
  "test_concurrency_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

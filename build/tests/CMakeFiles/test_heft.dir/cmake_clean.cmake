file(REMOVE_RECURSE
  "CMakeFiles/test_heft.dir/cudastf/test_heft.cpp.o"
  "CMakeFiles/test_heft.dir/cudastf/test_heft.cpp.o.d"
  "test_heft"
  "test_heft.pdb"
  "test_heft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_heft.
# This may be replaced when dependencies are built.

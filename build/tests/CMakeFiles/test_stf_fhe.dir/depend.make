# Empty dependencies file for test_stf_fhe.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_stf_fhe.dir/fhe/test_stf_fhe.cpp.o"
  "CMakeFiles/test_stf_fhe.dir/fhe/test_stf_fhe.cpp.o.d"
  "test_stf_fhe"
  "test_stf_fhe.pdb"
  "test_stf_fhe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stf_fhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

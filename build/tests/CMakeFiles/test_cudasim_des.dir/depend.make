# Empty dependencies file for test_cudasim_des.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_cudasim_des.dir/cudasim/test_des.cpp.o"
  "CMakeFiles/test_cudasim_des.dir/cudasim/test_des.cpp.o.d"
  "test_cudasim_des"
  "test_cudasim_des.pdb"
  "test_cudasim_des[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cudasim_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

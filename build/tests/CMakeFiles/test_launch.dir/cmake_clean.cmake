file(REMOVE_RECURSE
  "CMakeFiles/test_launch.dir/cudastf/test_launch.cpp.o"
  "CMakeFiles/test_launch.dir/cudastf/test_launch.cpp.o.d"
  "test_launch"
  "test_launch.pdb"
  "test_launch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_ckks.dir/fhe/test_ckks.cpp.o"
  "CMakeFiles/test_ckks.dir/fhe/test_ckks.cpp.o.d"
  "test_ckks"
  "test_ckks.pdb"
  "test_ckks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

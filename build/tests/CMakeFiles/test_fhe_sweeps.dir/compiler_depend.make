# Empty compiler generated dependencies file for test_fhe_sweeps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_fhe_sweeps.dir/fhe/test_fhe_sweeps.cpp.o"
  "CMakeFiles/test_fhe_sweeps.dir/fhe/test_fhe_sweeps.cpp.o.d"
  "test_fhe_sweeps"
  "test_fhe_sweeps.pdb"
  "test_fhe_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fhe_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

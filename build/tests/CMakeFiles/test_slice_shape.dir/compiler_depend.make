# Empty compiler generated dependencies file for test_slice_shape.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_slice_shape.dir/cudastf/test_slice_shape.cpp.o"
  "CMakeFiles/test_slice_shape.dir/cudastf/test_slice_shape.cpp.o.d"
  "test_slice_shape"
  "test_slice_shape.pdb"
  "test_slice_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slice_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

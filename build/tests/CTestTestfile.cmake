# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_cudasim_des[1]_include.cmake")
include("/root/repo/build/tests/test_cudasim_stream[1]_include.cmake")
include("/root/repo/build/tests/test_cudasim_graph[1]_include.cmake")
include("/root/repo/build/tests/test_cudasim_vmm[1]_include.cmake")
include("/root/repo/build/tests/test_stf_basic[1]_include.cmake")
include("/root/repo/build/tests/test_graph_ctx[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_for[1]_include.cmake")
include("/root/repo/build/tests/test_launch[1]_include.cmake")
include("/root/repo/build/tests/test_eviction[1]_include.cmake")
include("/root/repo/build/tests/test_page_mapper[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_cholesky[1]_include.cmake")
include("/root/repo/build/tests/test_miniweather[1]_include.cmake")
include("/root/repo/build/tests/test_ckks[1]_include.cmake")
include("/root/repo/build/tests/test_stf_fhe[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_heft[1]_include.cmake")
include("/root/repo/build/tests/test_fhe_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_slice_shape[1]_include.cmake")
include("/root/repo/build/tests/test_concurrency_api[1]_include.cmake")
include("/root/repo/build/tests/test_msi_protocol[1]_include.cmake")

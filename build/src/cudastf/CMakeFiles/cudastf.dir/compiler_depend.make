# Empty compiler generated dependencies file for cudastf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cudastf.dir/backend_graph.cpp.o"
  "CMakeFiles/cudastf.dir/backend_graph.cpp.o.d"
  "CMakeFiles/cudastf.dir/backend_stream.cpp.o"
  "CMakeFiles/cudastf.dir/backend_stream.cpp.o.d"
  "CMakeFiles/cudastf.dir/context.cpp.o"
  "CMakeFiles/cudastf.dir/context.cpp.o.d"
  "CMakeFiles/cudastf.dir/data.cpp.o"
  "CMakeFiles/cudastf.dir/data.cpp.o.d"
  "CMakeFiles/cudastf.dir/hierarchy.cpp.o"
  "CMakeFiles/cudastf.dir/hierarchy.cpp.o.d"
  "CMakeFiles/cudastf.dir/page_mapper.cpp.o"
  "CMakeFiles/cudastf.dir/page_mapper.cpp.o.d"
  "libcudastf.a"
  "libcudastf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cudastf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

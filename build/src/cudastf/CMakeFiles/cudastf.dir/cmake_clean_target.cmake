file(REMOVE_RECURSE
  "libcudastf.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cudastf/backend_graph.cpp" "src/cudastf/CMakeFiles/cudastf.dir/backend_graph.cpp.o" "gcc" "src/cudastf/CMakeFiles/cudastf.dir/backend_graph.cpp.o.d"
  "/root/repo/src/cudastf/backend_stream.cpp" "src/cudastf/CMakeFiles/cudastf.dir/backend_stream.cpp.o" "gcc" "src/cudastf/CMakeFiles/cudastf.dir/backend_stream.cpp.o.d"
  "/root/repo/src/cudastf/context.cpp" "src/cudastf/CMakeFiles/cudastf.dir/context.cpp.o" "gcc" "src/cudastf/CMakeFiles/cudastf.dir/context.cpp.o.d"
  "/root/repo/src/cudastf/data.cpp" "src/cudastf/CMakeFiles/cudastf.dir/data.cpp.o" "gcc" "src/cudastf/CMakeFiles/cudastf.dir/data.cpp.o.d"
  "/root/repo/src/cudastf/hierarchy.cpp" "src/cudastf/CMakeFiles/cudastf.dir/hierarchy.cpp.o" "gcc" "src/cudastf/CMakeFiles/cudastf.dir/hierarchy.cpp.o.d"
  "/root/repo/src/cudastf/page_mapper.cpp" "src/cudastf/CMakeFiles/cudastf.dir/page_mapper.cpp.o" "gcc" "src/cudastf/CMakeFiles/cudastf.dir/page_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cudasim/CMakeFiles/cudasim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/miniweather.dir/baselines.cpp.o"
  "CMakeFiles/miniweather.dir/baselines.cpp.o.d"
  "CMakeFiles/miniweather.dir/core.cpp.o"
  "CMakeFiles/miniweather.dir/core.cpp.o.d"
  "CMakeFiles/miniweather.dir/stf_driver.cpp.o"
  "CMakeFiles/miniweather.dir/stf_driver.cpp.o.d"
  "libminiweather.a"
  "libminiweather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniweather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/miniweather/baselines.cpp" "src/miniweather/CMakeFiles/miniweather.dir/baselines.cpp.o" "gcc" "src/miniweather/CMakeFiles/miniweather.dir/baselines.cpp.o.d"
  "/root/repo/src/miniweather/core.cpp" "src/miniweather/CMakeFiles/miniweather.dir/core.cpp.o" "gcc" "src/miniweather/CMakeFiles/miniweather.dir/core.cpp.o.d"
  "/root/repo/src/miniweather/stf_driver.cpp" "src/miniweather/CMakeFiles/miniweather.dir/stf_driver.cpp.o" "gcc" "src/miniweather/CMakeFiles/miniweather.dir/stf_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cudastf/CMakeFiles/cudastf.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/cudasim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

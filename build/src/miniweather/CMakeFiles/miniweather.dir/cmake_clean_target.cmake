file(REMOVE_RECURSE
  "libminiweather.a"
)

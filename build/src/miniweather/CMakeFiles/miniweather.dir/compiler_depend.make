# Empty compiler generated dependencies file for miniweather.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fhe.dir/ckks.cpp.o"
  "CMakeFiles/fhe.dir/ckks.cpp.o.d"
  "CMakeFiles/fhe.dir/modmath.cpp.o"
  "CMakeFiles/fhe.dir/modmath.cpp.o.d"
  "CMakeFiles/fhe.dir/ntt.cpp.o"
  "CMakeFiles/fhe.dir/ntt.cpp.o.d"
  "CMakeFiles/fhe.dir/stf_evaluator.cpp.o"
  "CMakeFiles/fhe.dir/stf_evaluator.cpp.o.d"
  "libfhe.a"
  "libfhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

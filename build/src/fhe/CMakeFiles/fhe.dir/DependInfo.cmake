
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fhe/ckks.cpp" "src/fhe/CMakeFiles/fhe.dir/ckks.cpp.o" "gcc" "src/fhe/CMakeFiles/fhe.dir/ckks.cpp.o.d"
  "/root/repo/src/fhe/modmath.cpp" "src/fhe/CMakeFiles/fhe.dir/modmath.cpp.o" "gcc" "src/fhe/CMakeFiles/fhe.dir/modmath.cpp.o.d"
  "/root/repo/src/fhe/ntt.cpp" "src/fhe/CMakeFiles/fhe.dir/ntt.cpp.o" "gcc" "src/fhe/CMakeFiles/fhe.dir/ntt.cpp.o.d"
  "/root/repo/src/fhe/stf_evaluator.cpp" "src/fhe/CMakeFiles/fhe.dir/stf_evaluator.cpp.o" "gcc" "src/fhe/CMakeFiles/fhe.dir/stf_evaluator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cudastf/CMakeFiles/cudastf.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/cudasim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libfhe.a"
)

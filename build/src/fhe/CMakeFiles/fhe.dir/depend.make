# Empty dependencies file for fhe.
# This may be replaced when dependencies are built.

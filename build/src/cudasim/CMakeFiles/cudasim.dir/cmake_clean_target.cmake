file(REMOVE_RECURSE
  "libcudasim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cudasim/des.cpp" "src/cudasim/CMakeFiles/cudasim.dir/des.cpp.o" "gcc" "src/cudasim/CMakeFiles/cudasim.dir/des.cpp.o.d"
  "/root/repo/src/cudasim/device.cpp" "src/cudasim/CMakeFiles/cudasim.dir/device.cpp.o" "gcc" "src/cudasim/CMakeFiles/cudasim.dir/device.cpp.o.d"
  "/root/repo/src/cudasim/graph.cpp" "src/cudasim/CMakeFiles/cudasim.dir/graph.cpp.o" "gcc" "src/cudasim/CMakeFiles/cudasim.dir/graph.cpp.o.d"
  "/root/repo/src/cudasim/platform.cpp" "src/cudasim/CMakeFiles/cudasim.dir/platform.cpp.o" "gcc" "src/cudasim/CMakeFiles/cudasim.dir/platform.cpp.o.d"
  "/root/repo/src/cudasim/stream.cpp" "src/cudasim/CMakeFiles/cudasim.dir/stream.cpp.o" "gcc" "src/cudasim/CMakeFiles/cudasim.dir/stream.cpp.o.d"
  "/root/repo/src/cudasim/vmm.cpp" "src/cudasim/CMakeFiles/cudasim.dir/vmm.cpp.o" "gcc" "src/cudasim/CMakeFiles/cudasim.dir/vmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cudasim.dir/des.cpp.o"
  "CMakeFiles/cudasim.dir/des.cpp.o.d"
  "CMakeFiles/cudasim.dir/device.cpp.o"
  "CMakeFiles/cudasim.dir/device.cpp.o.d"
  "CMakeFiles/cudasim.dir/graph.cpp.o"
  "CMakeFiles/cudasim.dir/graph.cpp.o.d"
  "CMakeFiles/cudasim.dir/platform.cpp.o"
  "CMakeFiles/cudasim.dir/platform.cpp.o.d"
  "CMakeFiles/cudasim.dir/stream.cpp.o"
  "CMakeFiles/cudasim.dir/stream.cpp.o.d"
  "CMakeFiles/cudasim.dir/vmm.cpp.o"
  "CMakeFiles/cudasim.dir/vmm.cpp.o.d"
  "libcudasim.a"
  "libcudasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cudasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for taskbench.
# This may be replaced when dependencies are built.

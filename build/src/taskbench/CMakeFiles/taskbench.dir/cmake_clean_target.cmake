file(REMOVE_RECURSE
  "libtaskbench.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/taskbench.dir/taskbench.cpp.o"
  "CMakeFiles/taskbench.dir/taskbench.cpp.o.d"
  "libtaskbench.a"
  "libtaskbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

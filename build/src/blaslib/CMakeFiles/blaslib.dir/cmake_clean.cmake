file(REMOVE_RECURSE
  "CMakeFiles/blaslib.dir/blas_host.cpp.o"
  "CMakeFiles/blaslib.dir/blas_host.cpp.o.d"
  "CMakeFiles/blaslib.dir/blas_sim.cpp.o"
  "CMakeFiles/blaslib.dir/blas_sim.cpp.o.d"
  "CMakeFiles/blaslib.dir/tiled_cholesky.cpp.o"
  "CMakeFiles/blaslib.dir/tiled_cholesky.cpp.o.d"
  "libblaslib.a"
  "libblaslib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaslib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

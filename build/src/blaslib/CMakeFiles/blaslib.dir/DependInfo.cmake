
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blaslib/blas_host.cpp" "src/blaslib/CMakeFiles/blaslib.dir/blas_host.cpp.o" "gcc" "src/blaslib/CMakeFiles/blaslib.dir/blas_host.cpp.o.d"
  "/root/repo/src/blaslib/blas_sim.cpp" "src/blaslib/CMakeFiles/blaslib.dir/blas_sim.cpp.o" "gcc" "src/blaslib/CMakeFiles/blaslib.dir/blas_sim.cpp.o.d"
  "/root/repo/src/blaslib/tiled_cholesky.cpp" "src/blaslib/CMakeFiles/blaslib.dir/tiled_cholesky.cpp.o" "gcc" "src/blaslib/CMakeFiles/blaslib.dir/tiled_cholesky.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cudastf/CMakeFiles/cudastf.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/cudasim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libblaslib.a"
)

# Empty dependencies file for blaslib.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cusolvermg.dir/mg_cholesky.cpp.o"
  "CMakeFiles/cusolvermg.dir/mg_cholesky.cpp.o.d"
  "libcusolvermg.a"
  "libcusolvermg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusolvermg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

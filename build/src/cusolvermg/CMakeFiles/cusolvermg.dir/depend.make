# Empty dependencies file for cusolvermg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcusolvermg.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_oom_cholesky.dir/bench_fig3_oom_cholesky.cpp.o"
  "CMakeFiles/bench_fig3_oom_cholesky.dir/bench_fig3_oom_cholesky.cpp.o.d"
  "bench_fig3_oom_cholesky"
  "bench_fig3_oom_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_oom_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig3_oom_cholesky.
# This may be replaced when dependencies are built.

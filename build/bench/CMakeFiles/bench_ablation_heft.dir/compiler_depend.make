# Empty compiler generated dependencies file for bench_ablation_heft.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_heft.dir/bench_ablation_heft.cpp.o"
  "CMakeFiles/bench_ablation_heft.dir/bench_ablation_heft.cpp.o.d"
  "bench_ablation_heft"
  "bench_ablation_heft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_heft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

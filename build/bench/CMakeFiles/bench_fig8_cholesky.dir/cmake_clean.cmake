file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cholesky.dir/bench_fig8_cholesky.cpp.o"
  "CMakeFiles/bench_fig8_cholesky.dir/bench_fig8_cholesky.cpp.o.d"
  "bench_fig8_cholesky"
  "bench_fig8_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

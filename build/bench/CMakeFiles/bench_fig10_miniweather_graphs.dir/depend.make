# Empty dependencies file for bench_fig10_miniweather_graphs.
# This may be replaced when dependencies are built.

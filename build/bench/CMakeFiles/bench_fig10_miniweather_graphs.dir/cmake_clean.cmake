file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_miniweather_graphs.dir/bench_fig10_miniweather_graphs.cpp.o"
  "CMakeFiles/bench_fig10_miniweather_graphs.dir/bench_fig10_miniweather_graphs.cpp.o.d"
  "bench_fig10_miniweather_graphs"
  "bench_fig10_miniweather_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_miniweather_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table2_reduction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_reduction.dir/bench_table2_reduction.cpp.o"
  "CMakeFiles/bench_table2_reduction.dir/bench_table2_reduction.cpp.o.d"
  "bench_table2_reduction"
  "bench_table2_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig7_page_mapping.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_stream_pool.
# This may be replaced when dependencies are built.

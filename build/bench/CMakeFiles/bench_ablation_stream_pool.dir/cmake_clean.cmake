file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stream_pool.dir/bench_ablation_stream_pool.cpp.o"
  "CMakeFiles/bench_ablation_stream_pool.dir/bench_ablation_stream_pool.cpp.o.d"
  "bench_ablation_stream_pool"
  "bench_ablation_stream_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stream_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fhe_dot.dir/bench_fig11_fhe_dot.cpp.o"
  "CMakeFiles/bench_fig11_fhe_dot.dir/bench_fig11_fhe_dot.cpp.o.d"
  "bench_fig11_fhe_dot"
  "bench_fig11_fhe_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fhe_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig11_fhe_dot.
# This may be replaced when dependencies are built.

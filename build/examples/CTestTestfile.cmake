# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;add_repro_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_gpu_reduction "/root/repo/build/examples/multi_gpu_reduction")
set_tests_properties(example_multi_gpu_reduction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;add_repro_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tiled_cholesky "/root/repo/build/examples/tiled_cholesky")
set_tests_properties(example_tiled_cholesky PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;add_repro_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_weather_sim "/root/repo/build/examples/weather_sim")
set_tests_properties(example_weather_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;add_repro_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_encrypted_dot "/root/repo/build/examples/encrypted_dot")
set_tests_properties(example_encrypted_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;add_repro_example;/root/repo/examples/CMakeLists.txt;0;")

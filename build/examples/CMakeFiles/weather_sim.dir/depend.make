# Empty dependencies file for weather_sim.
# This may be replaced when dependencies are built.

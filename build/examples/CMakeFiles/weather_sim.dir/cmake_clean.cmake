file(REMOVE_RECURSE
  "CMakeFiles/weather_sim.dir/weather_sim.cpp.o"
  "CMakeFiles/weather_sim.dir/weather_sim.cpp.o.d"
  "weather_sim"
  "weather_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

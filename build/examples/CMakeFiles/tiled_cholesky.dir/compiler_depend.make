# Empty compiler generated dependencies file for tiled_cholesky.
# This may be replaced when dependencies are built.

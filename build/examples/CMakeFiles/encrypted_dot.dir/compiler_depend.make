# Empty compiler generated dependencies file for encrypted_dot.
# This may be replaced when dependencies are built.

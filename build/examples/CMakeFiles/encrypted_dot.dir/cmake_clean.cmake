file(REMOVE_RECURSE
  "CMakeFiles/encrypted_dot.dir/encrypted_dot.cpp.o"
  "CMakeFiles/encrypted_dot.dir/encrypted_dot.cpp.o.d"
  "encrypted_dot"
  "encrypted_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

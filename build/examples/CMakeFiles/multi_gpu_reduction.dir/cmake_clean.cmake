file(REMOVE_RECURSE
  "CMakeFiles/multi_gpu_reduction.dir/multi_gpu_reduction.cpp.o"
  "CMakeFiles/multi_gpu_reduction.dir/multi_gpu_reduction.cpp.o.d"
  "multi_gpu_reduction"
  "multi_gpu_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_gpu_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

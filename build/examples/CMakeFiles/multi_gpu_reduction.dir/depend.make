# Empty dependencies file for multi_gpu_reduction.
# This may be replaced when dependencies are built.
